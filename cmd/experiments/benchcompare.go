package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"sortsynth/internal/bench"
	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
)

// regressionThreshold is the wall-clock ratio (fresh / committed) above
// which benchcompare fails a row. 20% absorbs scheduler and thermal
// noise on a loaded host while still catching real engine regressions,
// which historically land at 1.5x or worse.
const regressionThreshold = 1.20

func init() {
	register("benchcompare", "re-measure the enum rows of BENCH_enum.json and fail on a >20% wall-clock regression", false, func(c *ctx) error {
		c.section("Throughput regression gate vs committed BENCH_enum.json")

		data, err := os.ReadFile("BENCH_enum.json")
		if err != nil {
			return fmt.Errorf("benchcompare needs the committed baseline: %w", err)
		}
		var rep enumBenchReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return fmt.Errorf("parse BENCH_enum.json: %w", err)
		}

		// Measure under the same runtime width the baseline rows were
		// taken at (enumbench un-pins GOMAXPROCS the same way).
		prev := runtime.GOMAXPROCS(runtime.NumCPU())
		defer runtime.GOMAXPROCS(prev)

		var t tableWriter
		t.row("n", "workers", "committed", "fresh", "ratio", "verdict")
		worst := 0.0
		failed := 0
		for _, m := range rep.Measurements {
			if m.Backend != "enum" || m.ISA != "cmov" {
				continue // portfolio rows race a stochastic backend; skip
			}
			opt := enum.ConfigBest()
			opt.MaxLen = m.MaxLen
			opt.Workers = m.Workers
			// Re-measure with the same best-of-N the enumbench table used
			// for this n: the committed number is a minimum over that many
			// rounds, and comparing a smaller-sample minimum against it
			// would bias every ratio above 1.
			rounds := 2
			if m.N <= 3 {
				rounds = 5
			}
			fresh, err := bench.MeasureSearch(isa.NewCmov(m.N, 1), opt, rounds)
			if err != nil {
				return fmt.Errorf("n=%d workers=%d: %w", m.N, m.Workers, err)
			}
			ratio := fresh.WallMS / m.WallMS
			verdict := "ok"
			if ratio > regressionThreshold {
				verdict = "REGRESSION"
				failed++
			}
			if ratio > worst {
				worst = ratio
			}
			t.row(fmt.Sprint(m.N), fmt.Sprint(m.Workers),
				fmt.Sprintf("%.1fms", m.WallMS),
				fmt.Sprintf("%.1fms", fresh.WallMS),
				fmt.Sprintf("%.2f", ratio), verdict)
		}
		t.flush(c.w)
		c.printf("\nworst fresh/committed wall-clock ratio: %.2f (threshold %.2f)\n",
			worst, regressionThreshold)
		if failed > 0 {
			return fmt.Errorf("%d enum row(s) regressed beyond %.0f%%; "+
				"if intentional, regenerate the baseline with -table=enumbench",
				failed, (regressionThreshold-1)*100)
		}
		return nil
	})
}
