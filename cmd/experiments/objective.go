package main

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"sortsynth/internal/bench"
	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/kcache"
	"sortsynth/internal/kernels"
	"sortsynth/internal/uarch"
	"sortsynth/internal/universe"
)

// objectiveRow is one shortest-vs-fastest latency measurement in
// BENCH_enum.json: the frozen kernel each objective serves for a given
// n, its cost-model prediction, and its measured wall time over the
// standard random-array batch.
type objectiveRow struct {
	N               int     `json:"n"`
	Objective       string  `json:"objective"`
	Kernel          string  `json:"kernel"`
	Instructions    int     `json:"instructions"`
	ModelThroughput float64 `json:"model_throughput"`
	WallMS          float64 `json:"wall_ms"`
}

// frozenFor resolves the kernel a serving objective inlines for n:
// shortest is the first-pick (the program the shortest search surfaces
// first), fastest is the model-best pick — the same split sortgen uses.
func frozenFor(n int, objective string) (kernels.Kernel, error) {
	if objective == "shortest" {
		k, ok := kernels.FirstPick(n)
		if !ok {
			return kernels.Kernel{}, fmt.Errorf("no frozen first-pick kernel for n=%d", n)
		}
		return k, nil
	}
	for _, k := range kernels.Contenders(n) {
		if k.Name == "enum" {
			return k, nil
		}
	}
	return kernels.Kernel{}, fmt.Errorf("no frozen model-best kernel for n=%d", n)
}

func init() {
	register("objective", "shortest-vs-fastest measured kernel latency (updates the objective rows of BENCH_enum.json)", false, func(c *ctx) error {
		c.section("Ranking objectives: measured latency of the served kernels")

		rep, err := loadBenchReport()
		if err != nil {
			return fmt.Errorf("read committed BENCH_enum.json: %w", err)
		}

		var rows []objectiveRow
		var t tableWriter
		t.row("n", "objective", "kernel", "instr", "model tp", "measured")
		for _, n := range []int{3, 4, 5} {
			inputs := bench.RandomArrays(n, 4096, 10000, 11)
			for _, objective := range []string{"shortest", "fastest"} {
				k, err := frozenFor(n, objective)
				if err != nil {
					return err
				}
				a := uarch.Analyze(k.Set, k.Prog)
				d := bench.Measure(k.Go, inputs, 400)
				row := objectiveRow{
					N:               n,
					Objective:       objective,
					Kernel:          k.Name,
					Instructions:    len(k.Prog),
					ModelThroughput: a.Throughput,
					WallMS:          float64(d) / float64(time.Millisecond),
				}
				rows = append(rows, row)
				t.row(fmt.Sprint(n), objective, k.Name,
					fmt.Sprint(row.Instructions),
					fmt.Sprintf("%.2f", row.ModelThroughput),
					fmt.Sprintf("%.2fms", row.WallMS))
			}
		}
		t.flush(c.w)
		c.printf("\nBoth picks per n have the same (optimal) length; only the instruction\n")
		c.printf("schedule differs. The model tp column is the gap objective=fastest\n")
		c.printf("optimizes; the measured column records how much of it survives real\n")
		c.printf("hardware (at these sizes the two picks sit within scheduler noise).\n")

		rep.ObjectiveRows = rows
		if err := writeBenchReport(rep); err != nil {
			return err
		}
		c.printf("updated the objective rows of BENCH_enum.json\n")
		return nil
	})

	register("objectivecheck", "objective gate: worker-invariant re-rank, fastest cost ≤ shortest, pre-v3 kernel stores rejected", false, func(c *ctx) error {
		set := isa.NewCmov(3, 1)

		// 1. Re-rank determinism: the fastest winner must be a pure
		// function of the solution set, byte-identical at every worker
		// count (workers only shorten the wall clock).
		c.section("Re-rank determinism across worker counts (cmov n=3, objective=fastest)")
		var t tableWriter
		t.row("workers", "wall", "ranked", "cost", "length")
		var winner string
		var fastCost float64
		for _, w := range []int{1, 2, 4, 8} {
			opt := enum.ConfigBest()
			opt.MaxLen = 11
			opt.Workers = w
			opt.Objective = enum.ObjectiveFastest
			res := enum.Run(set, opt)
			if res.Err != nil || res.Length < 0 {
				return fmt.Errorf("workers=%d: %v (length %d)", w, res.Err, res.Length)
			}
			text := res.Program.Format(set.N)
			if winner == "" {
				winner, fastCost = text, res.Cost
			} else if text != winner || res.Cost != fastCost {
				return fmt.Errorf("workers=%d produced a different fastest winner (cost %.3f vs %.3f):\n%s",
					w, res.Cost, fastCost, text)
			}
			t.row(fmt.Sprint(w), res.Elapsed.Round(time.Millisecond).String(),
				fmt.Sprint(res.RerankCandidates), fmt.Sprintf("%.3f", res.Cost), fmt.Sprint(res.Length))
		}
		t.flush(c.w)
		c.printf("fastest winner byte-identical across workers 1/2/4/8: true\n")

		// 2. The fastest pick can never model-cost more than the shortest
		// pick — it is the minimum of the metric the shortest pick is
		// merely one sample of.
		shortOpt := enum.ConfigBest()
		shortOpt.MaxLen = 11
		shortRes := enum.Run(set, shortOpt)
		if shortRes.Err != nil || shortRes.Length < 0 {
			return fmt.Errorf("shortest baseline: %v", shortRes.Err)
		}
		_, shortCost, err := enum.RankPrograms(set, []isa.Program{shortRes.Program}, enum.ObjectiveFastest, "")
		if err != nil {
			return err
		}
		c.printf("model cost: fastest %.3f ≤ shortest pick %.3f: %v\n", fastCost, shortCost, fastCost <= shortCost)
		if fastCost > shortCost {
			return fmt.Errorf("fastest winner costs %.3f, more than the shortest pick's %.3f", fastCost, shortCost)
		}

		// 3. Objectives mint distinct v3 cache keys.
		kShort := kcache.KeyFor(set, shortOpt)
		fastOpt := shortOpt
		fastOpt.Objective = enum.ObjectiveFastest
		kFast := kcache.KeyFor(set, fastOpt)
		if kShort.Hash() == kFast.Hash() {
			return fmt.Errorf("shortest and fastest share cache key %s", kShort.Hash())
		}
		c.printf("distinct v3 cache keys: shortest %s, fastest %s\n", kShort.Hash()[:12], kFast.Hash()[:12])

		// 4. Kernel stores written under the pre-v3 key scheme must be
		// rejected loudly, with the remedy in the message — silently
		// remounting them would serve shortest bytes under fastest keys.
		c.section("Stale kernel-store rejection")
		for _, tc := range []struct {
			name string
			prep func(dir string) error
		}{
			{"v2-marked store", func(dir string) error {
				return os.WriteFile(dir+"/KEYVERSION", []byte("2\n"), 0o644)
			}},
			{"unmarked populated store", func(dir string) error {
				return os.WriteFile(dir+"/deadbeef.json", []byte("{}"), 0o644)
			}},
		} {
			dir, err := os.MkdirTemp("", "objcheck")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			if err := tc.prep(dir); err != nil {
				return err
			}
			_, err = kcache.New(dir, 4)
			var stale *kcache.StaleStoreError
			if !errors.As(err, &stale) {
				return fmt.Errorf("%s: kcache.New returned %v, want a StaleStoreError", tc.name, err)
			}
			if !strings.Contains(err.Error(), "re-bake") {
				return fmt.Errorf("%s: rejection %q does not name the remedy (re-bake)", tc.name, err)
			}
			c.printf("%s rejected: %v\n", tc.name, err)
		}

		// 5. The bake plan itself covers the new objective: the default
		// spec universe emits fastest rows for every enum instance, so
		// bakecheck's differential replay (baked == live, byte for byte)
		// extends to them with no extra machinery.
		nFast := 0
		for _, sp := range universe.EnumerateSpecs(universe.Options{}) {
			if sp.Backend == "enum" && sp.Objective == enum.ObjectiveFastest {
				nFast++
			}
		}
		if nFast == 0 {
			return fmt.Errorf("default bake universe contains no fastest specs")
		}
		c.printf("\ndefault bake universe: %d enum fastest specs (replayed by -table=bakecheck)\n", nFast)
		return nil
	})
}
