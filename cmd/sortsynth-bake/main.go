// Command sortsynth-bake precomputes the kernel universe: it enumerates
// every reachable synthesis spec (both ISAs, a range of n, a budget band
// around the known optimal lengths, the deterministic backends, the
// duplicate-safe enum variants), synthesizes each one through the
// registry's central verification, and writes a single immutable,
// checksummed, content-addressed artifact that sortsynthd mounts with
// -universe to serve the whole space with zero searches.
//
//	sortsynth-bake -o universe.ssuniv
//	sortsynth-bake -o mini.ssuniv -max-n 3 -backends enum -workers 4
//	sortsynthd -universe universe.ssuniv
//
// The exit status is nonzero if any spec failed to synthesize (timed-out
// or inconclusive specs are skipped, not failed: the live tier still
// covers them).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sortsynth/internal/enum"
	"sortsynth/internal/universe"
)

func main() {
	log.SetFlags(0)
	var (
		out     = flag.String("o", "universe.ssuniv", "output artifact path (written atomically)")
		isas    = flag.String("isas", "cmov,minmax", "comma-separated instruction sets to bake")
		minN    = flag.Int("min-n", 2, "smallest array length")
		maxN    = flag.Int("max-n", 5, "largest array length")
		slack   = flag.Int("slack", 2, "budget band half-width around the optimal length L*")
		banames = flag.String("backends", strings.Join(universe.DeterministicBackends(), ","),
			"comma-separated deterministic backends to bake")
		dupsafe = flag.Bool("dupsafe", true, "also bake duplicate-safe enum variants")
		objs    = flag.String("objectives", "shortest,fastest",
			"comma-separated ranking objectives to bake for the enum backend")
		workers = flag.Int("workers", 2, "specs synthesized concurrently")
		timeout = flag.Duration("spec-timeout", 60*time.Second, "per-spec synthesis bound (exceeding it skips the spec)")
		quiet   = flag.Bool("q", false, "suppress per-spec progress lines")
	)
	flag.Parse()

	objectives := make([]enum.Objective, 0, 3)
	for _, name := range splitList(*objs) {
		o, err := enum.ParseObjective(name)
		if err != nil {
			log.Fatalf("-objectives: %v", err)
		}
		objectives = append(objectives, o)
	}

	opt := universe.Options{
		ISAs:          splitList(*isas),
		MinN:          *minN,
		MaxN:          *maxN,
		Slack:         *slack,
		Backends:      splitList(*banames),
		DuplicateSafe: *dupsafe,
		Objectives:    objectives,
		Workers:       *workers,
		SpecTimeout:   *timeout,
	}
	if !*quiet {
		opt.Log = log.Printf
	}
	n := len(universe.EnumerateSpecs(opt))
	log.Printf("baking %d specs into %s (%d workers, %v per spec)", n, *out, *workers, *timeout)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	contentID, stats, err := universe.Bake(ctx, *out, nil, opt)
	if err != nil {
		log.Fatalf("bake: %v", err)
	}
	log.Printf("done in %v: %d kernels, %d refutations, %d skipped, %d failed",
		time.Since(start).Round(time.Millisecond), stats.Baked, stats.Negative, stats.Skipped, stats.Failed)
	fmt.Printf("%s  %s\n", contentID, *out)
	if stats.Failed > 0 {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
