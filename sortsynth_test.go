package sortsynth_test

import (
	"strings"
	"testing"
	"time"

	"sortsynth"
)

func TestQuickstartFlow(t *testing.T) {
	set := sortsynth.NewCmovSet(3, 1)
	bound, ok := sortsynth.KnownOptimalLength(set)
	if !ok || bound != 11 {
		t.Fatalf("KnownOptimalLength = %d, %v", bound, ok)
	}
	res := sortsynth.SynthesizeBest(set, bound)
	if res.Length != 11 {
		t.Fatalf("synthesized length %d, want 11", res.Length)
	}
	if !sortsynth.Verify(set, res.Program) {
		t.Fatal("synthesized kernel does not verify")
	}
	a := sortsynth.Analyze(set, res.Program)
	if a.Instructions != 11 || a.Score <= 0 || a.Throughput <= 0 {
		t.Errorf("Analyze = %+v", a)
	}
}

func TestEnumerateAllFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	set := sortsynth.NewCmovSet(3, 1)
	res := sortsynth.EnumerateAll(set, 11, 100)
	if res.SolutionCount != 5602 {
		t.Fatalf("SolutionCount = %d, want 5602", res.SolutionCount)
	}
	if len(res.Programs) != 100 {
		t.Errorf("materialized %d programs, want capped 100", len(res.Programs))
	}
}

func TestProveNoKernelFacade(t *testing.T) {
	// There is provably no 3-instruction kernel for n=2.
	set := sortsynth.NewCmovSet(2, 1)
	ok, res := sortsynth.ProveNoKernel(set, 3)
	if !ok {
		t.Fatalf("lower-bound proof failed: %+v", res)
	}
	// And there is a 4-instruction kernel, so the proof must fail at 4.
	ok, res = sortsynth.ProveNoKernel(set, 4)
	if ok {
		t.Fatal("claimed no length-4 kernel exists for n=2")
	}
	if res.Length != 4 {
		t.Errorf("found length %d during disproof, want 4", res.Length)
	}
}

func TestParseAndCounterexample(t *testing.T) {
	set := sortsynth.NewCmovSet(2, 1)
	p, err := sortsynth.Parse("mov s1 r2; cmp r1 r2; cmovg r2 r1; cmovg r1 s1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if ce := sortsynth.Counterexample(set, p); ce != nil {
		t.Errorf("correct kernel has counterexample %v", ce)
	}
	broken, _ := sortsynth.Parse("mov r1 r2", 2)
	if ce := sortsynth.Counterexample(set, broken); ce == nil {
		t.Error("broken kernel has no counterexample")
	}
	if sortsynth.VerifyDuplicates(set, broken) {
		t.Error("broken kernel passes duplicate verification")
	}
}

func TestSynthesizeMinimalFacade(t *testing.T) {
	set := sortsynth.NewMinMaxSet(3, 1)
	res := sortsynth.SynthesizeMinimal(set, time.Minute)
	if res.Length != 8 || !res.Proof {
		t.Fatalf("minimal min/max: length %d, certified %v", res.Length, res.Proof)
	}
	if !sortsynth.Verify(set, res.Program) {
		t.Fatal("kernel incorrect")
	}
}

func TestDenoteAndAsmFacade(t *testing.T) {
	set := sortsynth.NewCmovSet(3, 1)
	res := sortsynth.SynthesizeBest(set, 11)
	if res.Length != 11 {
		t.Fatal("synthesis failed")
	}
	exprs := sortsynth.Denote(set, res.Program)
	if len(exprs) != 3 {
		t.Fatalf("Denote returned %d expressions", len(exprs))
	}
	// r1 of any correct kernel is the minimum of all inputs.
	b, _ := sortsynth.Parse("mov s1 r1; cmp r1 r2; cmovg r1 r2; cmp r1 r3; cmovg r1 r3", 3)
	minExpr := sortsynth.Denote(set, b)[0]
	if !sortsynth.ExprEquiv(3, exprs[0], minExpr) {
		t.Errorf("r1 = %s is not the 3-way minimum", exprs[0])
	}
	asm := sortsynth.AsmX86(set, res.Program)
	if !strings.Contains(asm, "rax") || strings.Count(asm, "\n") != 11 {
		t.Errorf("assembly rendering wrong:\n%s", asm)
	}
	// A minimal kernel is a fixpoint of the classical optimizer.
	if got := sortsynth.Optimize(set, res.Program); len(got) != 11 {
		t.Errorf("Optimize shrank a minimal kernel to %d", len(got))
	}
}

func TestMinMaxFacade(t *testing.T) {
	set := sortsynth.NewMinMaxSet(3, 1)
	bound, ok := sortsynth.KnownOptimalLength(set)
	if !ok || bound != 8 {
		t.Fatalf("minmax bound = %d", bound)
	}
	res := sortsynth.SynthesizeBest(set, bound)
	if res.Length != 8 || !sortsynth.Verify(set, res.Program) {
		t.Fatalf("minmax synthesis failed: length %d", res.Length)
	}
}
