module sortsynth

go 1.23
