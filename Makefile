GO ?= go

# check is the tier-1 gate: everything builds (cmd/ included), vets
# clean, the full test suite (including the sortsynthd service tests)
# passes under the race detector, the backend portfolio race smoke test
# (n=3, enum vs stoke) runs explicitly under -race, and the enum rows of
# BENCH_enum.json are re-measured without -race as a throughput
# regression gate.
.PHONY: check
check: build vet race smoke bench-compare

.PHONY: smoke
smoke:
	$(GO) test -race -run TestPortfolioSmoke ./internal/backend

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

# bench runs the kernel microbenchmarks plus the synthesis-throughput
# benchmark (n=3 and n=4, best configuration, at 1 / GOMAXPROCS / 8
# workers, plus a portfolio race row), which writes backend-labelled
# measurements to BENCH_enum.json at the repository root.
.PHONY: bench
bench: bench-kernels bench-enum

.PHONY: bench-kernels
bench-kernels:
	$(GO) test -bench=. -benchtime=100ms -run=^$$ .

.PHONY: bench-enum
bench-enum:
	$(GO) run ./cmd/experiments -table=enumbench

# bench-compare re-runs the enum measurements of the committed
# BENCH_enum.json (same best-of-N as the baseline, no race detector)
# and fails if any row's wall clock regressed by more than 20%.
# Regenerate the baseline with `make bench-enum` when a slowdown is
# intentional.
.PHONY: bench-compare
bench-compare:
	$(GO) run ./cmd/experiments -table=benchcompare
