GO ?= go

# check is the tier-1 gate: everything builds, vets clean, and the full
# test suite (including the sortsynthd service tests) passes under the
# race detector.
.PHONY: check
check: build vet race

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

.PHONY: bench
bench:
	$(GO) test -bench=. -benchtime=100ms -run=^$$ .
