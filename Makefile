GO ?= go

# check is the tier-1 gate: everything builds (cmd/ included), vets
# clean, the full test suite (including the sortsynthd service tests)
# passes under the race detector, the backend portfolio race smoke test
# (n=3, enum vs stoke) runs explicitly under -race, the cross-backend
# conformance harness reports zero divergences, the baked-universe gate
# proves a miniature bake identical to live synthesis and serveable with
# zero searches, every fuzz target survives a short -race fuzzing
# budget, the generated sorting library passes its generate → vet →
# build → differential gate, and the enum and sortgen rows of the
# committed BENCH_*.json files are re-measured without -race as
# throughput regression gates, the objective gate proves re-rank
# determinism across worker counts and the loud rejection of pre-v3
# kernel stores, and the SWAR gate proves the bit-sliced and scalar
# execution layers byte-identical across cut modes and worker counts.
.PHONY: check
check: build vet race smoke conformance bake-check objective-check swar-check autotune-check fuzz-smoke sortgen-check bench-compare sortgen-compare

# autotune-check is the tuned-dispatch gate: the deterministic scheduler
# battery (fake clock, scripted backends, seed pinning) and the
# service's tuned-mount tests run under -race, then tunecompare runs a
# mini autotune sweep (n ≤ 3, shortest) into a throwaway dir, reloads it
# through the strict loader, and replays a mixed workload through the
# racing and staggered portfolios: answers must agree with direct enum
# synthesis and staggered capacity (specs per second of engine time)
# must beat racing by the gate ratio. Regenerate the committed
# results/tuned.json with `make autotune` after changing backends.
.PHONY: autotune-check
autotune-check:
	$(GO) test -race -count=1 -run '^TestStaggered|^TestPortfolioSeedPinning$$|^TestTuned' ./internal/backend ./internal/service
	$(GO) test -race -count=1 ./internal/tuned
	$(GO) run ./cmd/experiments -table=tunecompare

# autotune regenerates the committed tuned dispatch table
# (results/tuned.json): every portfolio member measured best-of-3 on
# every spec class (ISA × n ≤ 3 × dup-safety × objective), plus enum
# worker/config audit rows. Serve it with `sortsynthd -tuned
# results/tuned.json`.
.PHONY: autotune
autotune:
	$(GO) run ./cmd/experiments -table=autotune

# swar-check is the SWAR execution-layer gate: the bit-sliced and the
# scalar engines must produce byte-identical program sets, solution
# counts, and effort counters across a cut × workers {1,2,4,8} matrix
# (both ISAs, permutation and weak-order suites). This equivalence is
# what keeps Options.DisableSWAR out of the kernel-cache keys. Exits
# nonzero on any divergence; writes results/swarcheck.txt.
.PHONY: swar-check
swar-check:
	$(GO) run ./cmd/experiments -table=swarcheck

# objective-check is the ranking-objective gate: the fastest winner must
# be byte-identical at workers 1/2/4/8 with model cost ≤ the shortest
# pick's, objectives must mint distinct v3 cache keys, kernel stores
# written under the pre-v3 key scheme must be rejected with a "re-bake"
# message, and the default bake universe must carry fastest specs (so
# bake-check's baked == live replay covers them).
.PHONY: objective-check
objective-check:
	$(GO) run ./cmd/experiments -table=objectivecheck

# conformance runs the differential + metamorphic harness: 200 random
# specs (n ≤ 3) judged across all registered backends against enum
# ground truth, plus the metamorphic invariants. Deterministic in -seed;
# exits nonzero on any divergence and writes results/conformance.txt.
.PHONY: conformance
conformance:
	$(GO) run ./cmd/experiments -table=conformance

# bake-check is the precomputed-universe gate: bake a miniature universe
# (enum, n=2..3, budgets L*±2, dupsafe variants), verify every record's
# checksum, byte-compare every baked record against a fresh live
# synthesis, judge the store with the conformance harness against
# independent ground truth, and serve a baked spec from a mounted
# sortsynthd with zero searches started. Exits nonzero on any
# divergence; writes results/bakecheck.txt.
.PHONY: bake-check
bake-check:
	$(GO) run ./cmd/experiments -table=bakecheck

# Native Go fuzz targets with committed seed corpora under testdata/.
# fuzz-smoke gives each target FUZZTIME (default 30s) under -race; the
# full fuzz target raises that to 5m per target.
FUZZTIME ?= 30s

.PHONY: fuzz-smoke
fuzz-smoke:
	$(GO) test -race -run='^$$' -fuzz='^FuzzParseProgram$$' -fuzztime=$(FUZZTIME) ./internal/isa
	$(GO) test -race -run='^$$' -fuzz='^FuzzCanonicalize$$' -fuzztime=$(FUZZTIME) ./internal/state
	$(GO) test -race -run='^$$' -fuzz='^FuzzHashKey$$' -fuzztime=$(FUZZTIME) ./internal/state
	$(GO) test -race -run='^$$' -fuzz='^FuzzSWARvsScalarStep$$' -fuzztime=$(FUZZTIME) ./internal/state
	$(GO) test -race -run='^$$' -fuzz='^FuzzFlatTable$$' -fuzztime=$(FUZZTIME) ./internal/enum
	$(GO) test -race -run='^$$' -fuzz='^FuzzVerifySorts$$' -fuzztime=$(FUZZTIME) ./internal/verify
	$(GO) test -race -run='^$$' -fuzz='^FuzzSortgenVsSlicesSort$$' -fuzztime=$(FUZZTIME) ./internal/sortgen
	$(GO) test -race -run='^$$' -fuzz='^FuzzTunedTableLoad$$' -fuzztime=$(FUZZTIME) ./internal/tuned

# sortgen-check is the generated-library gate: emit sorters for
# n = 6, 13, 32 into a throwaway module, go vet + go build them, run the
# compiled differential harness against slices.Sort over five input
# distributions, and re-run the in-process plan and hybrid differentials.
.PHONY: sortgen-check
sortgen-check:
	$(GO) test -count=1 -run '^TestEmittedModule$$|^TestPlanDifferential$$|^TestHybridDifferential$$' ./internal/sortgen

.PHONY: fuzz
fuzz: FUZZTIME = 5m
fuzz: fuzz-smoke

.PHONY: smoke
smoke:
	$(GO) test -race -run TestPortfolioSmoke ./internal/backend

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

# bench runs the kernel microbenchmarks plus the synthesis-throughput
# benchmark (n=3 and n=4, best configuration, at 1 / GOMAXPROCS / 8
# workers, plus a portfolio race row), which writes backend-labelled
# measurements to BENCH_enum.json at the repository root, and the
# shortest-vs-fastest objective latency rows, which land in the same
# file (each table preserves the other's half on rewrite).
.PHONY: bench
bench: bench-kernels bench-enum bench-objective

.PHONY: bench-objective
bench-objective:
	$(GO) run ./cmd/experiments -table=objective

.PHONY: bench-kernels
bench-kernels:
	$(GO) test -bench=. -benchtime=100ms -run=^$$ .

.PHONY: bench-enum
bench-enum:
	$(GO) run ./cmd/experiments -table=enumbench

# bench-compare re-runs the enum measurements of the committed
# BENCH_enum.json (same best-of-N as the baseline, no race detector)
# and fails if any row's wall clock regressed by more than 20%.
# Regenerate the baseline with `make bench-enum` when a slowdown is
# intentional.
.PHONY: bench-compare
bench-compare:
	$(GO) run ./cmd/experiments -table=benchcompare

# bench-sortgen benchmarks the generated sorting library (hybrid and
# composed fixed-n sorters) against slices.Sort / sort.Slice / sort.Ints
# over five distributions and writes BENCH_sortgen.json; it fails unless
# the hybrid beats sort.Slice on 500k random ints.
.PHONY: bench-sortgen
bench-sortgen:
	$(GO) run ./cmd/experiments -table=sortgen

# sortgen-compare re-measures the sortgen rows of the committed
# BENCH_sortgen.json and fails on a >35% wall-clock regression (whole-
# list sorts are noisier than search wall times) or if the hybrid stops
# beating sort.Slice at 500k random. Regenerate the baseline with
# `make bench-sortgen` when a slowdown is intentional.
.PHONY: sortgen-compare
sortgen-compare:
	$(GO) run ./cmd/experiments -table=sortgencompare
