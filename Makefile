GO ?= go

# check is the tier-1 gate: everything builds (cmd/ included), vets
# clean, the full test suite (including the sortsynthd service tests)
# passes under the race detector, and the backend portfolio race smoke
# test (n=3, enum vs stoke) runs explicitly under -race.
.PHONY: check
check: build vet race smoke

.PHONY: smoke
smoke:
	$(GO) test -race -run TestPortfolioSmoke ./internal/backend

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

# bench runs the kernel microbenchmarks plus the synthesis-throughput
# benchmark (n=3 and n=4, best configuration, at 1 / GOMAXPROCS / 8
# workers, plus a portfolio race row), which writes backend-labelled
# measurements to BENCH_enum.json at the repository root.
.PHONY: bench
bench: bench-kernels bench-enum

.PHONY: bench-kernels
bench-kernels:
	$(GO) test -bench=. -benchtime=100ms -run=^$$ .

.PHONY: bench-enum
bench-enum:
	$(GO) run ./cmd/experiments -table=enumbench
