// Package sortsynth synthesizes provably minimal branchless sorting
// kernels, reproducing "Synthesis of Sorting Kernels" (Ullrich & Hack,
// CGO 2025).
//
// A sorting kernel is a short straight-line program over mov/cmp/cmovl/
// cmovg (or movdqa/pmin/pmax) that sorts a fixed number of registers and
// serves as the base case of quicksort/mergesort. The package exposes
// the paper's enumerative A*/Dijkstra synthesizer with its heuristics and
// cuts:
//
//	set := sortsynth.NewCmovSet(3, 1)           // 3 values, 1 scratch register
//	res := sortsynth.SynthesizeBest(set, 11)    // paper config (III)
//	fmt.Println(res.Program.Format(3))
//
// Beyond single-kernel synthesis it can enumerate every optimal kernel
// (5602 for n=3), prove length lower bounds by exhaustion, verify kernels
// on the complete permutation and duplicate (weak-order) test suites, and
// statically score kernels with a microarchitectural cost model.
//
// The solver-based baselines the paper compares against (SMT, CP, ILP,
// Stoke-style MCMC, planning, MCTS) live in the internal packages and are
// driven by cmd/experiments.
package sortsynth

import (
	"context"
	"time"

	"sortsynth/internal/enum"
	"sortsynth/internal/isa"
	"sortsynth/internal/kernels"
	"sortsynth/internal/peephole"
	"sortsynth/internal/semantics"
	"sortsynth/internal/sortnet"
	"sortsynth/internal/uarch"
	"sortsynth/internal/verify"
)

// Re-exported core types. The aliases keep the public API in one import
// while the implementation stays in focused internal packages.
type (
	// Set is an instruction set instantiated for n sorted and m scratch
	// registers.
	Set = isa.Set
	// Instr is a single two-operand instruction.
	Instr = isa.Instr
	// Program is a straight-line instruction sequence.
	Program = isa.Program
	// Options configures the enumerative synthesizer (paper §3).
	Options = enum.Options
	// Result reports a synthesis run.
	Result = enum.Result
	// Trace collects search-progress samples (Figure 1).
	Trace = enum.Trace
	// Analysis is the static cost-model summary of a kernel.
	Analysis = uarch.Analysis
)

// Heuristic and cut selectors (paper §3.1, §3.5).
const (
	HeurNone      = enum.HeurNone
	HeurPermCount = enum.HeurPermCount
	HeurAsgCount  = enum.HeurAsgCount
	HeurDistMax   = enum.HeurDistMax

	CutNone     = enum.CutNone
	CutFactor   = enum.CutFactor
	CutAdditive = enum.CutAdditive
)

// NewCmovSet returns the mov/cmp/cmovl/cmovg instruction set for n values
// and m scratch registers (the paper uses m = 1).
func NewCmovSet(n, m int) *Set { return isa.NewCmov(n, m) }

// NewMinMaxSet returns the movdqa/pmin/pmax instruction set for n values
// and m scratch registers.
func NewMinMaxSet(n, m int) *Set { return isa.NewMinMax(n, m) }

// KnownOptimalLength returns the established minimal kernel length for
// the given set, when one is known: cmov 4/11/20/33 and min/max 3/8/15/26
// for n = 2..5 with one scratch register (paper §2.3, §5.4; the n=4 bound
// is proved by this repository's exhaustion mode, the n=5 values are the
// best known).
func KnownOptimalLength(set *Set) (int, bool) {
	if set.M != 1 {
		return 0, false
	}
	var table map[int]int
	if set.Kind == isa.KindCmov {
		table = map[int]int{2: 4, 3: 11, 4: 20, 5: 33}
	} else {
		table = map[int]int{2: 3, 3: 8, 4: 15, 5: 26}
	}
	l, ok := table[set.N]
	return l, ok
}

// Synthesize runs the enumerative search with explicit options.
func Synthesize(set *Set, opt Options) *Result { return enum.Run(set, opt) }

// SynthesizeContext is Synthesize with cancellation: the search stops
// promptly when ctx is cancelled (Result.Cancelled) or its deadline
// expires (Result.TimedOut). This is what sortsynthd uses to abort
// searches on client disconnect and graceful shutdown.
func SynthesizeContext(ctx context.Context, set *Set, opt Options) *Result {
	return enum.RunContext(ctx, set, opt)
}

// SynthesizeBest synthesizes one minimal kernel with the paper's best
// configuration (III): permutation-count guidance, per-assignment
// viability pruning, the action guide, and the cut with k = 1, under the
// given length bound (pass the known optimal length, or an upper bound
// such as a sorting-network size).
func SynthesizeBest(set *Set, maxLen int) *Result {
	opt := enum.ConfigBest()
	opt.MaxLen = maxLen
	return enum.Run(set, opt)
}

// SynthesizeMinimal synthesizes a kernel of certified minimal length
// without requiring a known bound: a sorting-network kernel provides the
// upper bound, then the search alternates between finding shorter
// kernels and certifying nonexistence by exhaustion. Result.Proof
// reports whether minimality was certified within the per-step budget
// (0 = unlimited; the n=4 certification is a multi-week computation).
func SynthesizeMinimal(set *Set, stepBudget time.Duration) *Result {
	var upper int
	if set.N <= 8 {
		upper = sortnet.Optimal(set.N).Size()
	} else {
		upper = sortnet.Batcher(set.N).Size()
	}
	if set.Kind == isa.KindCmov {
		upper *= 4
	} else {
		upper *= 3
	}
	return enum.RunMinimal(set, upper, stepBudget)
}

// SynthesizeDuplicateSafe is SynthesizeBest over the weak-order test
// suite: the returned kernel provably sorts arbitrary integers including
// repeated values. The paper's permutation criterion (§2.3) is complete
// only for distinct values — 64% of the optimal n=3 kernels it admits
// mis-sort ties. For n = 3 and n = 4, duplicate-safety costs no extra
// instructions (verified by this repository's runs; see EXPERIMENTS.md).
func SynthesizeDuplicateSafe(set *Set, maxLen int) *Result {
	opt := enum.ConfigBest()
	opt.MaxLen = maxLen
	opt.DuplicateSafe = true
	return enum.Run(set, opt)
}

// EnumerateAll enumerates every minimal kernel of length at most maxLen
// using only optimality-preserving pruning (all 5602 kernels for the
// n=3 cmov set). maxSolutions caps the materialized programs
// (0 = unlimited); the exact count is Result.SolutionCount either way.
func EnumerateAll(set *Set, maxLen, maxSolutions int) *Result {
	opt := enum.ConfigAllSolutions()
	opt.MaxLen = maxLen
	opt.MaxSolutions = maxSolutions
	return enum.Run(set, opt)
}

// ProveNoKernel exhaustively searches all programs of length ≤ length
// with optimality-preserving pruning only. It returns true iff the space
// was exhausted without finding a kernel, certifying the lower bound
// (the paper's n=4 length-19 result).
func ProveNoKernel(set *Set, length int) (bool, *Result) {
	res := enum.Run(set, enum.ConfigProof(length))
	return res.Proof && res.Length == -1, res
}

// Verify reports whether p sorts every permutation of 1..n — the paper's
// §2.3 correctness criterion, complete for inputs with distinct values.
func Verify(set *Set, p Program) bool { return verify.Sorts(set, p) }

// VerifyDuplicates additionally checks all inputs with repeated values
// (every canonical weak order), which the permutation suite does not
// cover: a kernel can sort all n! permutations yet mis-sort ties.
func VerifyDuplicates(set *Set, p Program) bool { return verify.SortsDuplicates(set, p) }

// Counterexample returns an input that p fails to sort (first searching
// permutations, then weak orders), or nil if p is fully correct.
func Counterexample(set *Set, p Program) []int {
	if ce := verify.Counterexample(set, p); ce != nil {
		return ce
	}
	return verify.DuplicateCounterexample(set, p)
}

// Parse parses a textual kernel ("mov s1 r1; cmp r1 r2; …") for a machine
// with n sorted registers.
func Parse(text string, n int) (Program, error) { return isa.ParseProgram(text, n) }

// Analyze statically scores a kernel with the microarchitectural cost
// model: instruction-weight score, critical path, ILP, and estimated
// steady-state throughput.
func Analyze(set *Set, p Program) Analysis { return uarch.Analyze(set, p) }

// Optimize runs the classical scalar compiler optimizations (copy
// propagation and dead-code elimination) on a kernel. On minimal
// synthesized kernels and on sorting-network kernels it is the identity
// — the paper's §2.1 point that beating the network by an instruction
// requires semantic reasoning classical passes cannot do.
func Optimize(set *Set, p Program) Program { return peephole.Optimize(set, p) }

// Expr is a min/max/ite expression over the input values — the
// denotational reading of a kernel (paper §2.1).
type Expr = semantics.Expr

// Denote symbolically executes a kernel, returning one expression per
// output register. For the paper's §2.1 kernel this yields e.g.
// r1 = min(b, min(a, c)).
func Denote(set *Set, p Program) []*Expr { return semantics.Symbolic(set, p) }

// ExprEquiv decides expression equivalence over n inputs by exhaustive
// evaluation on all weak orderings — the "semantical reasoning on
// min/max/ite expressions" of §2.1, mechanized.
func ExprEquiv(n int, x, y *Expr) bool { return semantics.Equiv(n, x, y) }

// AsmX86 renders a kernel as the Intel-syntax x86-64 assembly of the
// paper's listings (rax/rbx/… + rdi scratch for cmov kernels,
// xmm0../xmm7.. with movdqa/pminsd/pmaxsd for min/max kernels).
func AsmX86(set *Set, p Program) string { return kernels.AsmX86(set, p) }
