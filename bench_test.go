// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation. Mapping (see DESIGN.md §3):
//
//	T1  BenchmarkTableSearchSpace        §5.1 program-space table
//	T3  BenchmarkSynthesisBestN3/N4(/N5) §5.2 headline synthesis times
//	T4  BenchmarkSMT*                    §5.2 SMT table
//	T5  BenchmarkCPSynthN2               §5.2 CP table
//	T6  BenchmarkCPGoal/*                §5.2 goal-formulation table
//	T5  BenchmarkILPSynthN2              §5.2 ILP rows
//	T7  BenchmarkStokeColdN2             §5.2 stochastic search
//	T8  BenchmarkPlan*                   §5.2 planning table
//	T9  BenchmarkEnumAblation/*          §5.2 enum ablation
//	T10 BenchmarkCutK/*                  §5.2 cut-constant table
//	T11 BenchmarkKernelStandaloneN3/*    §5.3 standalone kernels n=3
//	T12 BenchmarkKernelQuicksortN3/*     §5.3 quicksort-embedded n=3
//	T13 BenchmarkKernelMergesortN3/*     §5.3 mergesort-embedded n=3
//	T14 BenchmarkKernelStandaloneN4/*    §5.3 n=4 tables
//	T15 BenchmarkKernelStandaloneN5/*    §5.3 n=5 table
//	T16 BenchmarkAllSolutionsN3          §5.1/§5.3 solution-space enumeration
//	T17 BenchmarkLowerBoundProofN3       §5.3 minimality by exhaustion
//	T18 BenchmarkMinMaxSynthesis/*       §5.4 min/max kernels
//	F1  BenchmarkFigure1TraceN4          Figure 1 search trace
//	F2  BenchmarkFigure2TSNE             Figure 2 embedding
//
// Absolute times are machine-specific; EXPERIMENTS.md records the
// paper-vs-measured comparison, and cmd/experiments renders the tables.
package sortsynth_test

import (
	"testing"

	"sortsynth/internal/bench"
	"sortsynth/internal/cp"
	"sortsynth/internal/enum"
	"sortsynth/internal/ilp"
	"sortsynth/internal/isa"
	"sortsynth/internal/kernels"
	"sortsynth/internal/mcts"
	"sortsynth/internal/plan"
	"sortsynth/internal/smt"
	"sortsynth/internal/sortnet"
	"sortsynth/internal/stoke"
	"sortsynth/internal/tsne"
)

// --- T1 ---------------------------------------------------------------

func BenchmarkTableSearchSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, tc := range []struct{ n, m, l int }{{3, 1, 11}, {4, 1, 20}, {5, 1, 33}, {6, 2, 45}} {
			_ = isa.NewCmov(tc.n, tc.m).RawProgramSpaceLog10(tc.l)
		}
	}
}

// --- T3 ---------------------------------------------------------------

func benchSynthBest(b *testing.B, n, bound int) {
	set := isa.NewCmov(n, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt := enum.ConfigBest()
		opt.MaxLen = bound
		if res := enum.Run(set, opt); res.Length != bound {
			b.Fatalf("length %d, want %d", res.Length, bound)
		}
	}
}

func BenchmarkSynthesisBestN3(b *testing.B) { benchSynthBest(b, 3, 11) }
func BenchmarkSynthesisBestN4(b *testing.B) { benchSynthBest(b, 4, 20) }

// --- T9 ---------------------------------------------------------------

func BenchmarkEnumAblation(b *testing.B) {
	set := isa.NewCmov(3, 1)
	configs := []struct {
		name string
		opt  func() enum.Options
	}{
		{"base", func() enum.Options { o := enum.ConfigBase(); o.MaxLen = 11; return o }},
		{"permcount", func() enum.Options {
			o := enum.ConfigBase()
			o.MaxLen = 11
			o.Heuristic = enum.HeurPermCount
			return o
		}},
		{"asgcount", func() enum.Options {
			o := enum.ConfigBase()
			o.MaxLen = 11
			o.Heuristic = enum.HeurAsgCount
			return o
		}},
		{"distmax", func() enum.Options {
			o := enum.ConfigBase()
			o.MaxLen = 11
			o.Heuristic = enum.HeurDistMax
			o.UseDistPrune = true
			return o
		}},
		{"cut1", func() enum.Options {
			o := enum.ConfigBase()
			o.MaxLen = 11
			o.Cut, o.CutK = enum.CutFactor, 1
			return o
		}},
		{"best", func() enum.Options { o := enum.ConfigBest(); o.MaxLen = 11; return o }},
		{"parallel", func() enum.Options {
			o := enum.ConfigBase()
			o.MaxLen = 11
			o.Heuristic = enum.HeurPermCount
			o.Workers = 4
			return o
		}},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := enum.Run(set, cfg.opt()); res.Length != 11 {
					b.Fatalf("length %d", res.Length)
				}
			}
		})
	}
}

// --- T10 --------------------------------------------------------------

func BenchmarkCutK(b *testing.B) {
	set := isa.NewCmov(3, 1)
	for _, k := range []float64{1, 1.5, 2} {
		b.Run(name("k", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := enum.ConfigBest()
				o.MaxLen = 11
				o.Cut, o.CutK = enum.CutFactor, k
				if res := enum.Run(set, o); res.Length != 11 {
					b.Fatal("synthesis failed")
				}
			}
		})
	}
}

func name(prefix string, k float64) string {
	if k == float64(int(k)) {
		return prefix + "=" + string(rune('0'+int(k)))
	}
	return prefix + "=1.5"
}

// --- T4 ---------------------------------------------------------------

func BenchmarkSMTPermN2(b *testing.B) {
	set := isa.NewCmov(2, 1)
	for i := 0; i < b.N; i++ {
		res := smt.SynthPerm(set, smt.Options{Length: 4, Goal: smt.GoalAscCounts0, Encoding: smt.EncodingDense})
		if res.Status != smt.Found {
			b.Fatal("SMT-PERM failed")
		}
	}
}

func BenchmarkSMTCegisN2(b *testing.B) {
	set := isa.NewCmov(2, 1)
	for i := 0; i < b.N; i++ {
		res := smt.SynthCEGIS(set, smt.Options{Length: 4, Goal: smt.GoalAscCounts0, Encoding: smt.EncodingDense})
		if res.Status != smt.Found {
			b.Fatal("SMT-CEGIS failed")
		}
	}
}

// --- T5/T6 ------------------------------------------------------------

func BenchmarkCPSynthN2(b *testing.B) {
	set := isa.NewCmov(2, 1)
	for i := 0; i < b.N; i++ {
		res := cp.Synthesize(set, cp.Options{
			Length: 4, Goal: cp.GoalAscCounts0,
			NoConsecutiveCmp: true, CmpSymmetry: true, NoSelfOps: true,
		})
		if res.Program == nil {
			b.Fatal("CP failed")
		}
	}
}

func BenchmarkCPGoal(b *testing.B) {
	set := isa.NewCmov(2, 1)
	for _, tc := range []struct {
		name string
		goal cp.Goal
	}{
		{"exact", cp.GoalExact},
		{"asc_counts0", cp.GoalAscCounts0},
		{"asc_counts", cp.GoalAscCounts},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := cp.Synthesize(set, cp.Options{Length: 4, Goal: tc.goal, CmpSymmetry: true, NoConsecutiveCmp: true})
				if res.Program == nil {
					b.Fatal("CP failed")
				}
			}
		})
	}
}

func BenchmarkILPSynthN2(b *testing.B) {
	set := isa.NewCmov(2, 1)
	for i := 0; i < b.N; i++ {
		res := ilp.Synthesize(set, ilp.Options{Length: 4, MaxNodes: 5_000_000})
		if res.Program == nil {
			b.Fatal("ILP failed")
		}
	}
}

// --- T7 ---------------------------------------------------------------

func BenchmarkStokeColdN2(b *testing.B) {
	set := isa.NewCmov(2, 1)
	for i := 0; i < b.N; i++ {
		res := stoke.Run(set, stoke.Options{Length: 4, Seed: int64(i + 1), MaxProposals: 2_000_000})
		if res.Program == nil {
			b.Fatal("stoke cold failed on n=2")
		}
	}
}

// --- T8 ---------------------------------------------------------------

func BenchmarkPlanAStarN2(b *testing.B) {
	set := isa.NewCmov(2, 1)
	prob := plan.Encode(set, nil)
	for i := 0; i < b.N; i++ {
		if res := plan.Solve(prob, plan.Options{Algorithm: plan.AStar, Heuristic: plan.GoalCount}); res.Plan == nil {
			b.Fatal("no plan")
		}
	}
}

func BenchmarkPlanLAMAStyleN3(b *testing.B) {
	set := isa.NewCmov(3, 1)
	prob := plan.Encode(set, nil)
	for i := 0; i < b.N; i++ {
		res := plan.Solve(prob, plan.Options{Algorithm: plan.GBFS, Heuristic: plan.HAdd, MaxNodes: 400_000})
		if res.Plan == nil {
			b.Fatal("no plan")
		}
	}
}

func BenchmarkMCTSN2(b *testing.B) {
	set := isa.NewCmov(2, 1)
	for i := 0; i < b.N; i++ {
		res := mcts.Run(set, mcts.Options{MaxLen: 6, Seed: int64(i + 1), Iterations: 500_000})
		if res.Program == nil {
			b.Fatal("MCTS failed on n=2")
		}
	}
}

// --- T11–T15: kernel runtime tables ------------------------------------

func benchKernels(b *testing.B, n int, embed string) {
	for _, k := range kernels.Contenders(n) {
		b.Run(k.Name, func(b *testing.B) {
			switch embed {
			case "":
				inputs := bench.RandomArrays(n, 1024, 10000, 42)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bench.Measure(k.Go, inputs, 1)
				}
			case "quick", "merge":
				list := bench.RandomList(20000, 7)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if embed == "quick" {
						bench.MeasureSort(func(a []int) { bench.Quicksort(a, n, k.Go) }, list, 1)
					} else {
						bench.MeasureSort(func(a []int) { bench.Mergesort(a, n, k.Go) }, list, 1)
					}
				}
			}
		})
	}
}

func BenchmarkKernelStandaloneN3(b *testing.B) { benchKernels(b, 3, "") }
func BenchmarkKernelQuicksortN3(b *testing.B)  { benchKernels(b, 3, "quick") }
func BenchmarkKernelMergesortN3(b *testing.B)  { benchKernels(b, 3, "merge") }
func BenchmarkKernelStandaloneN4(b *testing.B) { benchKernels(b, 4, "") }
func BenchmarkKernelQuicksortN4(b *testing.B)  { benchKernels(b, 4, "quick") }
func BenchmarkKernelStandaloneN5(b *testing.B) { benchKernels(b, 5, "") }

// --- T16 --------------------------------------------------------------

func BenchmarkAllSolutionsN3(b *testing.B) {
	set := isa.NewCmov(3, 1)
	for i := 0; i < b.N; i++ {
		o := enum.ConfigAllSolutions()
		o.MaxLen = 11
		o.MaxSolutions = 1
		if res := enum.Run(set, o); res.SolutionCount != 5602 {
			b.Fatalf("solutions = %d", res.SolutionCount)
		}
	}
}

// --- T17 --------------------------------------------------------------

func BenchmarkLowerBoundProofN3(b *testing.B) {
	set := isa.NewCmov(3, 1)
	for i := 0; i < b.N; i++ {
		res := enum.Run(set, enum.ConfigProof(10))
		if !res.Proof || res.Length != -1 {
			b.Fatal("proof failed")
		}
	}
}

// --- T18 --------------------------------------------------------------

func BenchmarkMinMaxSynthesis(b *testing.B) {
	for _, tc := range []struct{ n, bound int }{{3, 8}, {4, 15}} {
		b.Run(name("n", float64(tc.n)), func(b *testing.B) {
			set := isa.NewMinMax(tc.n, 1)
			for i := 0; i < b.N; i++ {
				o := enum.ConfigBest()
				o.MaxLen = tc.bound
				if res := enum.Run(set, o); res.Length != tc.bound {
					b.Fatalf("length %d", res.Length)
				}
			}
		})
	}
}

func BenchmarkMinMaxKernelRuntime(b *testing.B) {
	// §5.4 runtime comparison: min/max vs cmov vs network, n=3.
	inputs := bench.RandomArrays(3, 1024, 10000, 11)
	var minmaxGo, enumGo func([]int)
	for _, k := range kernels.Contenders(3) {
		switch k.Name {
		case "sort3_minmax":
			minmaxGo = k.Go
		case "enum":
			enumGo = k.Go
		}
	}
	netProg := sortnet.Optimal(3).CompileMinMax()
	netGo := kernels.Interpreted(isa.NewMinMax(3, 1), netProg)
	for _, tc := range []struct {
		name string
		fn   func([]int)
	}{
		{"minmax_synth", minmaxGo},
		{"cmov_synth", enumGo},
		{"minmax_network_interp", netGo},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench.Measure(tc.fn, inputs, 1)
			}
		})
	}
}

// --- F1/F2 ------------------------------------------------------------

func BenchmarkFigure1TraceN4(b *testing.B) {
	set := isa.NewCmov(4, 1)
	for i := 0; i < b.N; i++ {
		o := enum.ConfigAllSolutions()
		o.MaxLen = 20
		o.Cut, o.CutK = enum.CutFactor, 1
		o.StateBudget = 200_000
		o.MaxSolutions = 1
		o.Trace = &enum.Trace{SampleEvery: 1024}
		res := enum.Run(set, o)
		if len(o.Trace.Samples) == 0 {
			b.Fatal("no trace samples")
		}
		_ = res
	}
}

func BenchmarkFigure2TSNE(b *testing.B) {
	set := isa.NewCmov(3, 1)
	o := enum.ConfigAllSolutions()
	o.MaxLen = 11
	o.Cut, o.CutK = enum.CutFactor, 1 // 234 solutions: a fast, fixed corpus
	res := enum.Run(set, o)
	ids := make([][]int, len(res.Programs))
	for i, p := range res.Programs {
		row := make([]int, len(p))
		for t, in := range p {
			row[t] = set.InstrID(in)
		}
		ids[i] = row
	}
	feats := tsne.ProgramFeatures(ids, set.NumInstrs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tsne.Embed(feats, tsne.Options{Perplexity: 30, Iterations: 100, Seed: 70})
	}
}
